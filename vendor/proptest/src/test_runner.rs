//! Configuration and the deterministic per-case random stream.

/// Runner configuration. Only `cases` matters to the shim; the other
/// fields exist so struct-update syntax against the real crate compiles.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases per property.
    pub cases: u32,
    /// Accepted but unused (no shrinking in the shim).
    pub max_shrink_iters: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// A deterministic random stream (SplitMix64), seeded from the test path
/// and case index so each case is independent yet reproducible.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The stream for one test case.
    pub fn for_case(test_path: &str, case: u32) -> Self {
        // FNV-1a over the path: stable across runs and compilers.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            state: hash ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Unbiased uniform draw in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        if bound == 1 {
            return 0;
        }
        let mask = bound.next_power_of_two().wrapping_sub(1);
        loop {
            let v = self.next_u64() & mask;
            if v < bound {
                return v;
            }
        }
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_case_same_stream() {
        let mut a = TestRng::for_case("x::y", 3);
        let mut b = TestRng::for_case("x::y", 3);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_cases_diverge() {
        let mut a = TestRng::for_case("x::y", 0);
        let mut b = TestRng::for_case("x::y", 1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_is_in_range() {
        let mut rng = TestRng::for_case("t", 0);
        for bound in [1u64, 2, 3, 7, 100, 1 << 40] {
            for _ in 0..100 {
                assert!(rng.below(bound) < bound);
            }
        }
    }
}
