//! A tiny regex-shaped *generator* backing `&str` strategies.
//!
//! Supports exactly the syntax the workspace's tests use: literal
//! characters, character classes with ranges (`[a-zA-Z0-9_.-]`), groups
//! with alternation (`(stocks|WEATHER)`), the quantifiers `{n}`, `{n,m}`,
//! `*`, `+`, `?`, and the escapes `\\`, `\n`, `\t`, `\d`, `\w`, `\s`, and
//! `\PC` ("any non-control character"). Anything else panics loudly so a
//! new test knows to extend the shim rather than silently misgenerate.

use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Node {
    Lit(char),
    /// Inclusive ranges; a literal is a one-char range.
    Class(Vec<(char, char)>),
    /// `\PC`: any unicode scalar that is not a control character.
    NotControl,
    /// `(a|bc|d)` — alternation of sequences.
    Alt(Vec<Vec<Node>>),
    Repeat(Box<Node>, u32, u32),
}

/// Generates one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let nodes = Parser {
        chars: pattern.chars().collect(),
        pos: 0,
        pattern,
    }
    .sequence(true);
    let mut out = String::new();
    for node in &nodes {
        emit(node, rng, &mut out);
    }
    out
}

fn emit(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Lit(c) => out.push(*c),
        Node::Class(ranges) => {
            let total: u64 = ranges.iter().map(|(lo, hi)| span(*lo, *hi)).sum();
            let mut pick = rng.below(total);
            for (lo, hi) in ranges {
                let s = span(*lo, *hi);
                if pick < s {
                    // Ranges used in practice are contiguous scalar runs.
                    let c = char::from_u32(*lo as u32 + pick as u32)
                        .expect("class range crosses a surrogate gap");
                    out.push(c);
                    return;
                }
                pick -= s;
            }
            unreachable!("class weight accounting")
        }
        Node::NotControl => loop {
            // Mostly ASCII, sometimes any scalar — mirroring the real
            // crate's bias toward readable counterexamples.
            let c = if rng.below(4) < 3 {
                char::from_u32(0x20 + rng.below(0x5F) as u32).unwrap()
            } else {
                match char::from_u32(rng.below(0x11_0000) as u32) {
                    Some(c) => c,
                    None => continue,
                }
            };
            if !c.is_control() {
                out.push(c);
                return;
            }
        },
        Node::Alt(arms) => {
            let arm = &arms[rng.below(arms.len() as u64) as usize];
            for node in arm {
                emit(node, rng, out);
            }
        }
        Node::Repeat(inner, min, max) => {
            let n = *min + rng.below(u64::from(*max - *min) + 1) as u32;
            for _ in 0..n {
                emit(inner, rng, out);
            }
        }
    }
}

fn span(lo: char, hi: char) -> u64 {
    (hi as u32 as u64) - (lo as u32 as u64) + 1
}

struct Parser<'a> {
    chars: Vec<char>,
    pos: usize,
    pattern: &'a str,
}

impl Parser<'_> {
    fn bail(&self, what: &str) -> ! {
        panic!(
            "regex shim: unsupported {what} at position {} in {:?}; extend vendor/proptest/src/regex.rs",
            self.pos, self.pattern
        );
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    /// Parses a sequence until end (top level) or `)`/`|` (inside groups).
    fn sequence(&mut self, top: bool) -> Vec<Node> {
        let mut out = Vec::new();
        while let Some(c) = self.peek() {
            if !top && (c == ')' || c == '|') {
                break;
            }
            let atom = self.atom();
            out.push(self.quantified(atom));
        }
        if top && self.pos < self.chars.len() {
            self.bail("trailing content");
        }
        out
    }

    fn atom(&mut self) -> Node {
        match self.next() {
            Some('[') => self.class(),
            Some('(') => self.group(),
            Some('\\') => self.escape(),
            Some('.') => Node::NotControl,
            Some(c) if matches!(c, '*' | '+' | '?' | '{' | '}' | ']' | ')' | '|') => {
                self.bail("metacharacter")
            }
            Some(c) => Node::Lit(c),
            None => self.bail("end of pattern"),
        }
    }

    fn escape(&mut self) -> Node {
        match self.next() {
            Some('\\') => Node::Lit('\\'),
            Some('n') => Node::Lit('\n'),
            Some('t') => Node::Lit('\t'),
            Some('r') => Node::Lit('\r'),
            Some('d') => Node::Class(vec![('0', '9')]),
            Some('w') => Node::Class(vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')]),
            Some('s') => Node::Class(vec![(' ', ' '), ('\t', '\t'), ('\n', '\n')]),
            Some('P') => match self.next() {
                Some('C') => Node::NotControl,
                _ => self.bail("\\P category"),
            },
            Some(c) if !c.is_alphanumeric() => Node::Lit(c),
            _ => self.bail("escape"),
        }
    }

    fn class(&mut self) -> Node {
        if self.peek() == Some('^') {
            self.bail("negated class");
        }
        let mut ranges = Vec::new();
        loop {
            let lo = match self.next() {
                Some(']') => break,
                Some('\\') => match self.next() {
                    Some(c @ ('\\' | ']' | '-' | '^')) => c,
                    Some('n') => '\n',
                    Some('t') => '\t',
                    _ => self.bail("class escape"),
                },
                Some(c) => c,
                None => self.bail("unterminated class"),
            };
            // `-` is a range only when between two chars.
            if self.peek() == Some('-') && self.chars.get(self.pos + 1) != Some(&']') {
                self.next();
                let hi = match self.next() {
                    Some(c) if c != ']' => c,
                    _ => self.bail("class range"),
                };
                assert!(lo <= hi, "regex shim: inverted class range");
                ranges.push((lo, hi));
            } else {
                ranges.push((lo, lo));
            }
        }
        if ranges.is_empty() {
            self.bail("empty class");
        }
        Node::Class(ranges)
    }

    fn group(&mut self) -> Node {
        let mut arms = Vec::new();
        loop {
            arms.push(self.sequence(false));
            match self.next() {
                Some('|') => continue,
                Some(')') => break,
                _ => self.bail("unterminated group"),
            }
        }
        Node::Alt(arms)
    }

    fn quantified(&mut self, atom: Node) -> Node {
        match self.peek() {
            Some('{') => {
                self.next();
                let min = self.number();
                let max = match self.next() {
                    Some('}') => min,
                    Some(',') => {
                        let max = self.number();
                        if self.next() != Some('}') {
                            self.bail("repetition close");
                        }
                        max
                    }
                    _ => self.bail("repetition"),
                };
                assert!(min <= max, "regex shim: inverted repetition bounds");
                Node::Repeat(Box::new(atom), min, max)
            }
            Some('*') => {
                self.next();
                Node::Repeat(Box::new(atom), 0, 8)
            }
            Some('+') => {
                self.next();
                Node::Repeat(Box::new(atom), 1, 8)
            }
            Some('?') => {
                self.next();
                Node::Repeat(Box::new(atom), 0, 1)
            }
            _ => atom,
        }
    }

    fn number(&mut self) -> u32 {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.next();
        }
        if self.pos == start {
            self.bail("number");
        }
        self.chars[start..self.pos]
            .iter()
            .collect::<String>()
            .parse()
            .expect("digits")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case("regex", 0)
    }

    #[test]
    fn xml_name_pattern() {
        let mut rng = rng();
        for _ in 0..200 {
            let s = generate("[a-zA-Z_][a-zA-Z0-9_.-]{0,11}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 12, "{s:?}");
            let first = s.chars().next().unwrap();
            assert!(first.is_ascii_alphabetic() || first == '_', "{s:?}");
            assert!(
                s.chars().skip(1).all(|c| c.is_ascii_alphanumeric() || "_.-".contains(c)),
                "{s:?}"
            );
        }
    }

    #[test]
    fn alternation_groups() {
        let mut rng = rng();
        for _ in 0..100 {
            let s = generate("[a-zA-Z ]{0,10}(stocks|WEATHER|Sensor|STOCKS OPTIONS)[a-zA-Z ]{0,10}", &mut rng);
            assert!(
                ["stocks", "WEATHER", "Sensor", "STOCKS OPTIONS"].iter().any(|k| s.contains(k)),
                "{s:?}"
            );
        }
    }

    #[test]
    fn not_control_category() {
        let mut rng = rng();
        for _ in 0..50 {
            let s = generate("\\PC{0,200}", &mut rng);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
            assert!(s.chars().count() <= 200);
        }
    }

    #[test]
    fn plain_quantifiers() {
        let mut rng = rng();
        let s = generate("ab{2}c?d*e+", &mut rng);
        assert!(s.starts_with("abb"), "{s:?}");
        assert!(s.contains('e'), "{s:?}");
    }
}
