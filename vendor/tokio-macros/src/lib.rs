//! Offline shim of tokio's `#[tokio::test]` / `#[tokio::main]` attribute
//! macros, written without `syn`/`quote` (the container cannot download
//! crates). The expansion keeps the original `async fn` as an inner item
//! and drives it on the shim's single-threaded executor:
//!
//! ```text
//! #[::core::prelude::v1::test]
//! fn name() {
//!     async fn name() { /* original body */ }
//!     ::tokio::runtime::block_on_test(PAUSED, name());
//! }
//! ```
//!
//! `PAUSED` is true when the attribute arguments contain
//! `start_paused = true`, in which case the executor starts with a paused
//! virtual clock (the real crate's `test-util` behaviour).

use proc_macro::{TokenStream, TokenTree};

/// `#[tokio::test]` / `#[tokio::test(start_paused = true)]`.
#[proc_macro_attribute]
pub fn test(attr: TokenStream, item: TokenStream) -> TokenStream {
    expand(&attr, &item, true)
}

/// `#[tokio::main]` on an `async fn main`.
#[proc_macro_attribute]
pub fn main(attr: TokenStream, item: TokenStream) -> TokenStream {
    expand(&attr, &item, false)
}

fn expand(attr: &TokenStream, item: &TokenStream, is_test: bool) -> TokenStream {
    let attr_text = attr.to_string();
    let paused = attr_text.contains("start_paused") && attr_text.contains("true");
    let name = fn_name(item).expect("tokio shim: attribute requires an `async fn` item");
    let item_text = item.to_string();
    let test_attr = if is_test {
        "#[::core::prelude::v1::test]\n"
    } else {
        ""
    };
    format!(
        "{test_attr}fn {name}() {{\n    {item_text}\n    \
         ::tokio::runtime::block_on_test({paused}, {name}());\n}}"
    )
    .parse()
    .expect("tokio shim: macro expansion produced invalid tokens")
}

/// The identifier following the first `fn` token.
fn fn_name(item: &TokenStream) -> Option<String> {
    let mut saw_fn = false;
    for tree in item.clone() {
        if let TokenTree::Ident(ident) = tree {
            let text = ident.to_string();
            if saw_fn {
                return Some(text);
            }
            if text == "fn" {
                saw_fn = true;
            }
        }
    }
    None
}
