//! Offline shim of the `criterion` 0.5 API surface this workspace uses.
//!
//! The build container has no network access, so the real crate cannot be
//! downloaded; this shim (wired in via `[patch.crates-io]`) keeps the
//! benches compiling and runnable. It is a smoke harness, not a
//! statistics engine: each benchmark runs a short, fixed measurement loop
//! and prints a mean wall-clock time per iteration. Because the bench
//! targets are also built by `cargo test`, the loop is deliberately tiny.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` resolves like the real crate.
pub use std::hint::black_box;

/// Ceiling on measured iterations per benchmark; keeps `cargo test` fast.
const MAX_ITERS: u64 = 32;
/// Time budget per benchmark; whichever limit hits first wins.
const TIME_BUDGET: Duration = Duration::from_millis(200);

/// Throughput annotation; recorded and echoed, not analysed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes, scaled decimally in the real crate.
    BytesDecimal(u64),
}

/// Batch sizing for [`Bencher::iter_batched`]; the shim runs one routine
/// call per setup call regardless.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

/// Passed to benchmark closures; drives the measurement loop.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            total: Duration::ZERO,
            iters: 0,
        }
    }

    /// Times `routine` for a bounded number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warmup call outside the measurement.
        black_box(routine());
        let deadline = Instant::now() + TIME_BUDGET;
        while self.iters < MAX_ITERS && Instant::now() < deadline {
            let start = Instant::now();
            black_box(routine());
            self.total += start.elapsed();
            self.iters += 1;
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is not
    /// counted.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let deadline = Instant::now() + TIME_BUDGET;
        while self.iters < MAX_ITERS && Instant::now() < deadline {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.total += start.elapsed();
            self.iters += 1;
        }
    }

    fn report(&self, name: &str, throughput: Option<Throughput>) {
        if self.iters == 0 {
            println!("bench {name:<40} (no iterations)");
            return;
        }
        let per_iter = self.total / self.iters as u32;
        match throughput {
            Some(Throughput::Bytes(n)) | Some(Throughput::BytesDecimal(n)) => {
                println!("bench {name:<40} {per_iter:>12.2?}/iter  ({n} bytes/iter)");
            }
            Some(Throughput::Elements(n)) => {
                println!("bench {name:<40} {per_iter:>12.2?}/iter  ({n} elems/iter)");
            }
            None => println!("bench {name:<40} {per_iter:>12.2?}/iter"),
        }
    }
}

/// A named group of benchmarks sharing throughput/sizing settings.
pub struct BenchmarkGroup<'c> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for compatibility; the shim's loop is already bounded.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility; the shim ignores measurement time.
    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new();
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id), self.throughput);
        self
    }

    /// Ends the group (a no-op beyond matching the real API).
    pub fn finish(&mut self) {}
}

/// The benchmark driver handed to `criterion_group!` functions.
pub struct Criterion {}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {}
    }
}

impl Criterion {
    /// Accepted for compatibility with `Criterion::default().configure_*`
    /// chains; returns `self` unchanged.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Starts a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new();
        f(&mut bencher);
        bencher.report(id, None);
        self
    }
}

/// Declares a group-runner function invoking each benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(1)).sample_size(10);
        let mut calls = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        group.finish();
        // Warmup + at least one measured iteration.
        assert!(calls >= 2);
    }

    #[test]
    fn iter_batched_uses_fresh_inputs() {
        let mut c = Criterion::default();
        let mut made = 0u64;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    made += 1;
                    vec![0u8; 16]
                },
                |v| v.len(),
                BatchSize::SmallInput,
            )
        });
        assert!(made >= 2);
    }
}
