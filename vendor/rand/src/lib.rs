//! Offline shim of the `rand` 0.8 API surface this workspace uses.
//!
//! The build container has no network access and no crates.io mirror, so
//! the real `rand` cannot be downloaded. This crate re-implements exactly
//! the traits and methods the workspace calls — `RngCore`, `SeedableRng`
//! (including the PCG32-based `seed_from_u64` expansion the real crate
//! documents), and the `Rng` extension with `gen`/`gen_range` for the
//! types actually drawn — deterministically and without dependencies.
//! It is wired in through `[patch.crates-io]` in the workspace root.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The seed byte array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a 64-bit seed into a full seed via PCG32, matching the
    /// algorithm the real `rand_core` documents for this method.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be drawn uniformly "from all values" by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits, uniform in [0, 1) — same construction
        // as the real crate's Standard distribution.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! uint_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                sample_below(rng, (self.end - self.start) as u64) as $t + self.start
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                sample_below(rng, span + 1) as $t + lo
            }
        }
    )*};
}
uint_range_impls!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = f64::sample_standard(rng);
        let v = self.start + unit * (self.end - self.start);
        // Floating rounding can land exactly on `end`; clamp back inside.
        if v >= self.end {
            self.end - (self.end - self.start) * f64::EPSILON
        } else {
            v
        }
    }
}

/// Unbiased uniform draw in `[0, bound)` by masked rejection.
fn sample_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound == 1 {
        return 0;
    }
    let mask = bound.next_power_of_two().wrapping_sub(1);
    loop {
        let v = rng.next_u64() & mask;
        if v < bound {
            return v;
        }
    }
}

/// Convenience extension over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one value of `T` uniformly from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws one value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The subset of `rand::rngs` the workspace could reach for; kept so
/// `use rand::rngs::...` paths resolve if added later.
pub mod rngs {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counting(u64);
    impl RngCore for Counting {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 — good enough to test the adapters.
            self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn unit_floats_are_in_range() {
        let mut rng = Counting(1);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn int_ranges_are_inclusive_and_exclusive() {
        let mut rng = Counting(2);
        for _ in 0..1000 {
            let v = rng.gen_range(3u64..=5);
            assert!((3..=5).contains(&v));
            let w = rng.gen_range(10u64..12);
            assert!((10..12).contains(&w));
        }
        assert_eq!(rng.gen_range(7u64..=7), 7);
    }

    #[test]
    fn float_range_stays_inside() {
        let mut rng = Counting(3);
        for _ in 0..1000 {
            let v = rng.gen_range(1.5f64..2.5);
            assert!((1.5..2.5).contains(&v));
        }
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = Counting(4);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
