//! The fault-tolerance stack in action: crash MyAlertBuddy at the worst
//! possible moment (after the ack, before routing), watch pessimistic
//! logging save the alert; hang it and watch the MDC watchdog restart it;
//! pop an unknown dialog box and watch the monkey thread fail, learn the
//! rule, and recover.
//!
//! ```text
//! cargo run --example fault_tolerant_buddy
//! ```

use simba::client::dialogs::DialogBox;
use simba::client::ImManager;
use simba::core::alert::IncomingAlert;
use simba::core::mab::{CrashPoint, MabCommand, MabEvent, MyAlertBuddy};
use simba::core::mdc::{MasterDaemonController, MdcAction, MdcConfig};
use simba::core::wal::{InMemoryWal, WriteAheadLog};
use simba::net::im::{ImHandle, ImService};
use simba::sim::{SimRng, SimTime};
use simba_bench::harness::standard_config;

fn main() {
    println!("— scenario 1: crash after ack, before routing —");
    let config = standard_config();
    let mut mab = MyAlertBuddy::new(config.clone(), InMemoryWal::new(), SimTime::ZERO);
    mab.inject_crash_at(CrashPoint::AfterAckBeforeRoute);

    let alert = IncomingAlert::from_im("aladdin-gw", "Basement Water Sensor ON", SimTime::from_secs(5));
    let commands = mab.handle(MabEvent::AlertByIm(alert), SimTime::from_secs(5));
    println!("  commands before the crash: {} (the ack went out)", commands.len());
    assert!(commands.iter().any(|c| matches!(c, MabCommand::AckIm { .. })));
    println!("  MyAlertBuddy crashed: {}", mab.is_crashed());

    // The MDC restarts a fresh incarnation over the same log.
    let wal = mab.into_wal();
    println!("  unprocessed alerts in the log: {}", wal.unprocessed().len());
    let mut mab = MyAlertBuddy::new(config.clone(), wal, SimTime::from_secs(20));
    let replayed = mab.recover(SimTime::from_secs(20));
    let sends = replayed
        .iter()
        .filter(|c| matches!(c, MabCommand::Channel { .. }))
        .count();
    println!("  after restart: {} routing command(s) replayed — the acked alert was NOT lost\n", sends);

    println!("— scenario 2: hang, detected by the watchdog —");
    let mut mdc = MasterDaemonController::new(MdcConfig::default());
    mab.inject_hang();
    println!("  AreYouWorking() → {}", mab.are_you_working());
    let ping = mdc.on_ping_timer(SimTime::from_mins(3));
    let MdcAction::Ping { deadline } = ping else { unreachable!() };
    println!("  MDC pinged at {}, no reply by {}", SimTime::from_mins(3), deadline);
    match mdc.on_reply_deadline(deadline) {
        Some(MdcAction::RestartMab) => println!("  → MDC restarts MyAlertBuddy (restart #{})\n", mdc.restarts()),
        other => println!("  → unexpected: {other:?}\n"),
    }

    println!("— scenario 3: the unknown dialog box —");
    let mut rng = SimRng::new(1);
    let mut im = ImService::new(rng.fork(1));
    im.register(ImHandle::new("mab-im"));
    let mut manager = ImManager::new(ImHandle::new("mab-im"));
    manager.start(&mut im, SimTime::ZERO).expect("service up");
    manager
        .core_mut()
        .process_mut()
        .inject_dialog(DialogBox::blocking("Unexpected Script Error", "Continue", SimTime::from_secs(1)));

    let report = manager.sanity_check(&mut im, SimTime::from_secs(2));
    println!("  sanity check healthy: {} — {:?}", report.healthy(), report.anomalies);

    println!("  operator registers the caption-button pair (the §5 fix)...");
    manager.register_dialog_rule("Unexpected Script Error", "Continue");
    manager
        .core_mut()
        .process_mut()
        .inject_dialog(DialogBox::blocking("Unexpected Script Error", "Continue", SimTime::from_secs(90)));
    let report = manager.sanity_check(&mut im, SimTime::from_secs(100));
    println!("  next pass healthy: {} — repairs: {:?}", report.healthy(), report.repairs);
}
