//! The §5 Aladdin scenario, end to end: the kid disarms the security
//! system with an RF remote; the signal crosses the powerline, the
//! Soft-State Store replicates it to the home gateway, the Aladdin home
//! server emits an IM alert, and SIMBA routes it to the parent's screen.
//!
//! ```text
//! cargo run --example home_automation
//! ```

use simba::core::alert::IncomingAlert;
use simba::sim::{SimRng, SimTime};
use simba::sources::aladdin::{AladdinHome, HomeNetwork, HopLatencies, Sensor};
use simba_bench::harness::{build, handle, Ev, PipelineOptions};

fn main() {
    let mut rng = SimRng::new(2001);
    let mut home = AladdinHome::new("aladdin-gw", HopLatencies::default());
    home.add_sensor(
        Sensor {
            id: "security-disarm".into(),
            name: "Security Disarm".into(),
            network: HomeNetwork::Rf,
            critical: true,
            heartbeat: simba::sim::SimDuration::from_mins(10),
            max_missing: 3,
        },
        SimTime::ZERO,
    );
    home.add_sensor(
        Sensor {
            id: "basement-water".into(),
            name: "Basement Water".into(),
            network: HomeNetwork::Powerline,
            critical: true,
            heartbeat: simba::sim::SimDuration::from_mins(10),
            max_missing: 3,
        },
        SimTime::ZERO,
    );

    // 15:42 — the kid comes home and presses the remote.
    let pressed_at = SimTime::from_hours(15) + simba::sim::SimDuration::from_mins(42);
    let chain = home.trigger_sensor("security-disarm", true, pressed_at, &mut rng);
    println!("in-home signal chain:");
    for (hop, latency) in &chain.hops {
        println!("  {hop:<20} {latency}");
    }
    println!("  {:<20} {}", "chain total", chain.total);

    // The home server's alert enters the SIMBA pipeline.
    let alert: IncomingAlert = chain.alert.expect("critical sensor change");
    println!("\nalert emitted: {:?} (urgency {})", alert.body, alert.urgency);

    let horizon = pressed_at + simba::sim::SimDuration::from_hours(1);
    let mut engine = build(PipelineOptions::new(7, horizon));
    engine.schedule_at(pressed_at + chain.total, Ev::Emit { tag: 1, alert });
    engine.run_until(horizon, handle);

    let world = engine.world();
    let track = &world.tracks[&1];
    println!("\nSIMBA delivery timeline:");
    println!("  button pressed        {pressed_at}");
    if let Some(at) = track.mab_received_at {
        println!("  MyAlertBuddy received {at}");
    }
    if let Some(at) = track.source_acked_at {
        println!("  home server acked     {at}");
    }
    if let Some(at) = track.reached_user_at {
        println!("  IM on parent's screen {at}  (end-to-end {})", at - pressed_at);
    }
    if let Some(at) = track.seen_at {
        println!("  parent read it        {at}");
    }
    println!("  user acknowledged:    {}", track.user_acked);

    // Later the basement sensor's battery dies: missing heartbeats break
    // the device and Aladdin alerts about *that* too.
    let later = horizon + simba::sim::SimDuration::from_hours(2);
    let broken = home.check_device_health(later);
    println!("\ndevice-health sweep at {later}:");
    for alert in broken {
        println!("  {}", alert.body);
    }
}
