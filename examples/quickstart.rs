//! Quickstart: configure a MyAlertBuddy from XML documents, push an alert
//! through it, and watch the delivery-mode fallback kick in when an
//! address is disabled.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use simba::core::address::AddressBook;
use simba::core::alert::IncomingAlert;
use simba::core::classify::{Classifier, KeywordField};
use simba::core::delivery::{DeliveryCommand, DeliveryEvent, SendFailure};
use simba::core::mab::{MabCommand, MabConfig, MabEvent, MyAlertBuddy};
use simba::core::mode::DeliveryMode;
use simba::core::subscription::{SubscriptionRegistry, UserId};
use simba::core::wal::InMemoryWal;
use simba::sim::SimTime;

fn main() {
    // 1. The user's addresses and delivery mode, as the §4.1 XML documents.
    let book = AddressBook::from_xml(
        r#"<Addresses>
             <Address name="MSN IM"     type="IM"  value="im:alice"/>
             <Address name="Cell SMS"   type="SMS" value="+1-555-0100"/>
             <Address name="Work email" type="EM"  value="alice@work"/>
           </Addresses>"#,
    )
    .expect("valid address book");
    let urgent = DeliveryMode::from_xml(
        r#"<DeliveryMode name="Urgent">
             <Block ackTimeoutSecs="60">
               <Action address="MSN IM"/>
             </Block>
             <Block>
               <Action address="Work email"/>
             </Block>
           </DeliveryMode>"#,
    )
    .expect("valid delivery mode");
    println!("parsed delivery mode:\n{}", urgent.to_xml());

    // 2. Classifier: accept the home gateway, map sensor alerts to a
    //    personal category.
    let mut classifier = Classifier::new();
    classifier.accept_source("aladdin-gw", KeywordField::Body, "home gateway config page");
    classifier.map_keyword("Sensor", "Home.Security");

    // 3. Subscription: alice gets Home.Security alerts via "Urgent".
    let mut registry = SubscriptionRegistry::new();
    let alice = UserId::new("alice");
    let profile = registry.register_user(alice.clone());
    profile.address_book = book;
    profile.define_mode(urgent);
    registry
        .subscribe("Home.Security", alice.clone(), "Urgent")
        .expect("alice and Urgent exist");

    // 4. Launch the buddy and push an alert through it.
    let config = MabConfig {
        classifier,
        registry,
        rejuvenation: simba::core::rejuvenate::RejuvenationPolicy::default(),
    };
    let mut mab = MyAlertBuddy::new(config, InMemoryWal::new(), SimTime::ZERO);
    let alert = IncomingAlert::from_im("aladdin-gw", "Basement Water Sensor ON", SimTime::from_secs(5));
    let commands = mab.handle(MabEvent::AlertByIm(alert), SimTime::from_secs(5));

    println!("pipeline commands for the incoming alert:");
    let mut first_attempt = None;
    let mut delivery = None;
    for c in &commands {
        match c {
            MabCommand::AckIm { to, .. } => println!("  → ack IM back to {to}"),
            MabCommand::Channel { command: DeliveryCommand::Send { comm_type, address_name, attempt, .. }, delivery: d, .. } => {
                println!("  → send over {comm_type} via {address_name:?}");
                first_attempt.get_or_insert(*attempt);
                delivery.get_or_insert(*d);
            }
            MabCommand::Channel { command: DeliveryCommand::StartTimer { after, .. }, .. } => {
                println!("  → start {after} ack timer");
            }
            MabCommand::Rejuvenate(t) => println!("  → rejuvenate ({t})"),
        }
    }

    // 5. Simulate: the IM send fails (alice's IM is unreachable) — the
    //    delivery mode falls back to email automatically.
    let (id, attempt) = (delivery.expect("routed"), first_attempt.expect("sent"));
    let fallback = mab.handle(
        MabEvent::Delivery {
            id,
            event: DeliveryEvent::SendFailed { attempt, failure: SendFailure::RecipientUnreachable },
        },
        SimTime::from_secs(6),
    );
    println!("after the IM failed synchronously:");
    for c in &fallback {
        if let MabCommand::Channel { command: DeliveryCommand::Send { comm_type, address_name, .. }, .. } = c {
            println!("  → fallback send over {comm_type} via {address_name:?}");
        }
    }
    println!("delivery status: {:?}", mab.delivery_status(id).expect("tracked"));
    println!("stats: {:?}", mab.stats());
}
