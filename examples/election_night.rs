//! Election night 2000: the alert proxy polls the Florida-recount page
//! (and the PlayStation 2 stock page) and pushes every change through
//! SIMBA to the user — the exact §5 workload.
//!
//! ```text
//! cargo run --example election_night
//! ```

use simba::core::alert::Urgency;
use simba::sim::{SimDuration, SimTime};
use simba::sources::proxy::{AlertProxy, PollOutcome, Watch, WebSite};
use simba_bench::harness::{build, handle, Ev, PipelineOptions};

fn main() {
    let mut site = WebSite::new();
    site.publish(
        "http://election/fl",
        "… <recount> Bush +1,784 </recount> …",
    );
    site.publish("http://shop/ps2", "… [stock] sold out [/stock] …");

    let mut proxy = AlertProxy::new("proxy-im");
    proxy.add_watch(Watch {
        url: "http://election/fl".into(),
        start_keyword: "<recount>".into(),
        end_keyword: "</recount>".into(),
        poll_every: SimDuration::from_secs(30),
        urgency: Urgency::Normal,
    });
    proxy.add_watch(Watch {
        url: "http://shop/ps2".into(),
        start_keyword: "[stock]".into(),
        end_keyword: "[/stock]".into(),
        poll_every: SimDuration::from_secs(30),
        urgency: Urgency::Critical,
    });

    // The night's page updates, as (minute, watch, new content).
    let updates: [(u64, usize, &str); 5] = [
        (12, 0, "… <recount> Bush +960 </recount> …"),
        (47, 0, "… <recount> Bush +784 </recount> …"),
        (63, 1, "… [stock] PlayStation2 AVAILABLE — 14 units [/stock] …"),
        (90, 0, "… <recount> Bush +537 </recount> …"),
        (95, 1, "… [stock] sold out [/stock] …"),
    ];

    // Prime the baselines, then poll every 30 s and collect detections.
    proxy.poll(0, &site, SimTime::ZERO);
    proxy.poll(1, &site, SimTime::ZERO);
    let mut emissions = Vec::new();
    let mut next_update = 0usize;
    let horizon_polls = 2 * 60 * 2; // two hours of 30-second polls
    for tick in 1..=horizon_polls {
        let now = SimTime::from_secs(tick * 30);
        while next_update < updates.len() && SimTime::from_mins(updates[next_update].0) <= now {
            let (_, watch, content) = updates[next_update];
            let url = if watch == 0 { "http://election/fl" } else { "http://shop/ps2" };
            site.publish(url, content);
            next_update += 1;
        }
        for watch in 0..2 {
            if let PollOutcome::Alert(alert) = proxy.poll(watch, &site, now) {
                println!("[{now}] proxy detected: {}", alert.body);
                emissions.push((now, alert));
            }
        }
    }

    // Route the detections through the full SIMBA pipeline.
    let horizon = SimTime::from_hours(3);
    let mut engine = build(PipelineOptions::new(2000, horizon));
    for (tag, (at, alert)) in emissions.iter().enumerate() {
        engine.schedule_at(*at, Ev::Emit { tag: tag as u64, alert: alert.clone() });
    }
    engine.run_until(horizon, handle);

    println!("\ndelivery report:");
    let world = engine.world();
    for (tag, (detected_at, alert)) in emissions.iter().enumerate() {
        let track = &world.tracks[&(tag as u64)];
        let headline: String = alert.body.chars().take(48).collect();
        match track.reached_user_at {
            Some(at) => println!(
                "  {headline:<50} routed in {}",
                at - *detected_at
            ),
            None => println!("  {headline:<50} NOT delivered"),
        }
    }
    if let Some(summary) = world.metrics.summary("user.reach_latency") {
        println!("\nrouting latency across the night: {summary}");
        println!("(the paper measured 2.5 s on average for this path)");
    }
}
