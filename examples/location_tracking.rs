//! The WISH location-tracking scenario (§2.4, §5): bob's handheld reports
//! AP signal strengths; the WISH server estimates his location with a
//! confidence percentage and fires enter/move/leave alerts that SIMBA
//! delivers to alice.
//!
//! ```text
//! cargo run --example location_tracking
//! ```

use simba::sim::{SimDuration, SimRng, SimTime};
use simba::sources::wish::{
    AccessPoint, LocationSubscription, LocationTrigger, Point, RadioModel, WishClient, WishServer,
};

fn main() {
    let aps = vec![
        AccessPoint {
            id: "ap-b31-west".into(),
            position: Point { x: 0.0, y: 0.0 },
            building: "B31".into(),
            area: "1F-west".into(),
        },
        AccessPoint {
            id: "ap-b31-east".into(),
            position: Point { x: 60.0, y: 0.0 },
            building: "B31".into(),
            area: "1F-east".into(),
        },
        AccessPoint {
            id: "ap-b40".into(),
            position: Point { x: 420.0, y: 280.0 },
            building: "B40".into(),
            area: "lobby".into(),
        },
    ];
    let mut server = WishServer::new("wish-svc", aps.clone(), RadioModel::default());

    // Alice asks to be told when bob enters or leaves building 31 and when
    // he moves within it.
    for trigger in [
        LocationTrigger::Enter("B31".into()),
        LocationTrigger::MoveWithin("B31".into()),
        LocationTrigger::Leave("B31".into()),
    ] {
        server.subscribe(LocationSubscription {
            tracked: "bob".into(),
            watcher: "alice".into(),
            trigger,
        });
    }

    let client = WishClient {
        user: "bob".into(),
        report_every: SimDuration::from_secs(10),
    };
    let mut rng = SimRng::new(7);

    // Bob's morning: arrives at B31 west, walks to the east wing, then
    // heads over to B40.
    let walk: [(u64, Point, &str); 4] = [
        (0, Point { x: 3.0, y: 1.0 }, "arrives at B31 west entrance"),
        (600, Point { x: 25.0, y: 2.0 }, "mid-corridor"),
        (1_200, Point { x: 58.0, y: 1.0 }, "east wing office"),
        (2_400, Point { x: 418.0, y: 281.0 }, "walks to B40"),
    ];

    println!("tracking bob (subscriber: alice)\n");
    for (secs, position, what) in walk {
        let now = SimTime::from_secs(9 * 3_600 + secs);
        let Some(m) = client.measure(position, &aps, server.model(), "active", now, &mut rng) else {
            println!("[{now}] {what}: no AP audible");
            continue;
        };
        let (estimate, alerts) = server.report(&m);
        println!(
            "[{now}] {what}: heard {} at {:.0} dBm → {} / {} ({:.0} % confidence, ~{:.0} m)",
            m.ap_id,
            m.rssi,
            estimate.building.as_deref().unwrap_or("outside"),
            estimate.area.as_deref().unwrap_or("-"),
            estimate.confidence,
            estimate.distance_m,
        );
        for alert in alerts {
            println!("        ALERT → {}", alert.body);
        }
    }

    // Bob's device goes quiet: the soft-state variable misses its
    // refreshes and times out, which reads as "left".
    let timeout_check = SimTime::from_secs(9 * 3_600 + 2_400) + SimDuration::from_mins(10);
    for alert in server.check_timeouts(timeout_check) {
        println!("[{timeout_check}] soft-state timeout ALERT → {}", alert.body);
    }
    println!("\ntotal location alerts fired: {}", server.alerts_generated());
}
