//! The tokio live runtime: the same MyAlertBuddy state machine running
//! against wall-clock time, with loopback channels standing in for the
//! IM/email services.
//!
//! ```text
//! cargo run --example live_runtime
//! ```

use simba::core::alert::IncomingAlert;
use simba::runtime::{LoopbackChannels, MabService, RuntimeNotice};
use simba::sim::SimTime;
use simba_bench::harness::standard_config;
use std::time::Duration;

#[tokio::main(flavor = "current_thread")]
async fn main() {
    // IM sends are acknowledged by the "user" 400 ms after delivery.
    let channels = LoopbackChannels::always_ack(Duration::from_millis(400));
    let (service, handle, mut notices) = MabService::new(standard_config(), channels);
    let service_task = tokio::spawn(service.run());

    // A watchdog probes the service while we use it.
    let watchdog = tokio::spawn(simba::runtime::run_watchdog(
        handle.clone(),
        Duration::from_millis(500),
        Duration::from_millis(200),
        3,
    ));

    println!("submitting a critical alert over IM…");
    let started = std::time::Instant::now();
    handle
        .submit_im_alert(IncomingAlert::from_im(
            "aladdin-gw",
            "Basement Water Sensor ON",
            SimTime::ZERO,
        ))
        .await;

    // Watch the pipeline unfold in real time.
    while let Some(notice) = notices.recv().await {
        let at = started.elapsed();
        match notice {
            RuntimeNotice::AckSent { source } => {
                println!("[{at:>8.1?}] buddy acked the alert back to {source}");
            }
            RuntimeNotice::DeliveryFinished { delivery, status } => {
                println!("[{at:>8.1?}] delivery {delivery:?} finished: {status:?}");
                break;
            }
            RuntimeNotice::Rejuvenating(trigger) => {
                println!("[{at:>8.1?}] rejuvenating ({trigger})");
                break;
            }
        }
    }

    // Let the watchdog observe the healthy service for a moment, then
    // shut the service down; the watchdog notices within a few probes.
    tokio::time::sleep(Duration::from_millis(1_200)).await;
    drop(handle);
    service_task.abort();
    let report = watchdog.await.expect("watchdog task");
    println!(
        "watchdog report: {} healthy probes, {} missed",
        report.healthy_probes, report.missed_probes
    );
}
